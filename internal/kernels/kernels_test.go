package kernels

import (
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// TestHDReferenceAgainstO0 runs every Hacker's Delight kernel's -O0 target
// directly and compares eax against the reference Go semantics.
func TestHDReferenceAgainstO0(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := emu.New()
	for _, b := range All() {
		if b.RefHD == nil {
			continue
		}
		for trial := 0; trial < 200; trial++ {
			in := b.Spec.BuildInput(rng)
			args := make([]uint32, b.Params)
			argRegs := []x64.Reg{x64.RDI, x64.RSI, x64.RDX, x64.RCX}
			for i := range args {
				args[i] = uint32(in.Regs[argRegs[i]])
			}
			m.LoadSnapshot(in)
			out := m.Run(b.Target)
			if out.SigSegv+out.SigFpe+out.Undef > 0 {
				t.Fatalf("%s: target faulted on %v: %+v", b.Name, args, out)
			}
			want := b.RefHD(args)
			got := uint32(m.RegValue(x64.RAX, 4))
			if got != want {
				t.Fatalf("%s(%v) = %#x, want %#x\n%s", b.Name, args, got, want, b.Target)
			}
		}
	}
}

// TestComparatorsMatchTarget checks that the gcc -O3, icc -O3 and
// paper-rewrite variants of every benchmark compute the same function as
// the -O0 target, using the testcase machinery end to end.
func TestComparatorsMatchTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, b := range All() {
		tests, err := testgen.Generate(b.Target, b.Spec, 32, rng)
		if err != nil {
			t.Fatalf("%s: testgen: %v", b.Name, err)
		}
		f := cost.New(tests, b.Spec.LiveOut, cost.Strict, 0)
		check := func(kind string, p *x64.Program) {
			if p == nil {
				return
			}
			if got := f.Eval(p, cost.MaxBudget); got.Cost != 0 {
				t.Errorf("%s: %s disagrees with target (cost %v)\n%s",
					b.Name, kind, got.Cost, p)
			}
		}
		// The list comparators keep the head pointer in rdi across
		// iterations (the paper's point in §6.3: the production compilers
		// hoist the stack traffic out of the loop), so they compute the
		// same loop under a different register convention and are checked
		// separately in TestListGccVariantSemantics.
		if b.Name != "list" {
			check("gcc -O3", b.GccO3)
			check("icc -O3", b.IccO3)
		}
		check("paper rewrite", b.PaperRewrite)
	}
}

// TestMontO0MatchesReference validates the hand-written -O0 Montgomery
// kernel against 128-bit reference arithmetic.
func TestMontO0MatchesReference(t *testing.T) {
	b, err := ByName("mont")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	m := emu.New()
	for trial := 0; trial < 2000; trial++ {
		in := b.Spec.BuildInput(rng)
		np := in.Regs[x64.RSI]
		mh := in.Regs[x64.RCX]
		ml := in.Regs[x64.RDX]
		c0 := in.Regs[x64.RDI]
		c1 := in.Regs[x64.R8]

		hi, lo := bits.Mul64(np, mh<<32|ml)
		var c uint64
		lo, c = bits.Add64(lo, c0, 0)
		hi, _ = bits.Add64(hi, 0, c)
		lo, c = bits.Add64(lo, c1, 0)
		hi, _ = bits.Add64(hi, 0, c)

		m.LoadSnapshot(in)
		out := m.Run(b.Target)
		if out.SigSegv+out.SigFpe+out.Undef > 0 {
			t.Fatalf("mont O0 faulted: %+v", out)
		}
		if m.Regs[x64.RDI] != lo || m.Regs[x64.R8] != hi {
			t.Fatalf("mont O0: got %#x:%#x, want %#x:%#x (np=%#x mh=%#x ml=%#x c0=%#x c1=%#x)",
				m.Regs[x64.R8], m.Regs[x64.RDI], hi, lo, np, mh, ml, c0, c1)
		}
	}
}

// TestSaxpyVariantsWriteX checks the SAXPY semantics byte for byte.
func TestSaxpyVariantsWriteX(t *testing.T) {
	b, err := ByName("saxpy")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	m := emu.New()
	for trial := 0; trial < 100; trial++ {
		in := b.Spec.BuildInput(rng)
		a := uint32(in.Regs[x64.RDI])
		xBase := in.Regs[x64.RSI]
		var xs, ys [4]uint32
		for i := 0; i < 4; i++ {
			for bt := 3; bt >= 0; bt-- {
				xs[i] = xs[i]<<8 | uint32(in.Mem[1].Data[i*4+bt])
				ys[i] = ys[i]<<8 | uint32(in.Mem[2].Data[i*4+bt])
			}
		}
		m.LoadSnapshot(in)
		out := m.Run(b.Target)
		if out.SigSegv+out.SigFpe+out.Undef > 0 {
			t.Fatalf("saxpy O0 faulted: %+v", out)
		}
		for i := 0; i < 4; i++ {
			want := a*xs[i] + ys[i]
			var got uint32
			for bt := 3; bt >= 0; bt-- {
				bb, _, ok := m.MemByte(xBase + uint64(i*4+bt))
				if !ok {
					t.Fatal("x[] byte vanished")
				}
				got = got<<8 | uint32(bb)
			}
			if got != want {
				t.Fatalf("saxpy lane %d: got %#x, want %#x", i, got, want)
			}
		}
	}
}

// TestListFragmentSemantics checks the list fragment doubles the node value
// and advances the head slot.
func TestListFragmentSemantics(t *testing.T) {
	b, err := ByName("list")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	m := emu.New()
	for trial := 0; trial < 100; trial++ {
		in := b.Spec.BuildInput(rng)
		node0 := in.Mem[2].Base
		node1 := in.Mem[3].Base
		var val uint32
		for bt := 3; bt >= 0; bt-- {
			val = val<<8 | uint32(in.Mem[2].Data[bt])
		}
		m.LoadSnapshot(in)
		out := m.Run(b.Target)
		if out.SigSegv+out.SigFpe+out.Undef > 0 {
			t.Fatalf("list O0 faulted: %+v", out)
		}
		// head slot must now point at node1.
		var head uint64
		for bt := 7; bt >= 0; bt-- {
			bb, _, _ := m.MemByte(in.Regs[x64.RSP] - 8 + uint64(bt))
			head = head<<8 | uint64(bb)
		}
		if head != node1 {
			t.Fatalf("head = %#x, want node1 %#x", head, node1)
		}
		var got uint32
		for bt := 3; bt >= 0; bt-- {
			bb, _, _ := m.MemByte(node0 + uint64(bt))
			got = got<<8 | uint32(bb)
		}
		if got != val*2 {
			t.Fatalf("node value = %#x, want %#x", got, val*2)
		}
	}
}

// TestListGccVariantSemantics checks the register-convention list
// comparators: with the head pointer in rdi, one fragment run must double
// the node value and advance rdi to the next node.
func TestListGccVariantSemantics(t *testing.T) {
	b, err := ByName("list")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	m := emu.New()
	for _, variant := range []struct {
		name string
		p    *x64.Program
	}{{"gcc", b.GccO3}, {"icc", b.IccO3}} {
		for trial := 0; trial < 50; trial++ {
			in := b.Spec.BuildInput(rng)
			node0 := in.Mem[2].Base
			node1 := in.Mem[3].Base
			var val uint32
			for bt := 3; bt >= 0; bt-- {
				val = val<<8 | uint32(in.Mem[2].Data[bt])
			}
			in.Regs[x64.RDI] = node0
			in.RegDef |= 1 << x64.RDI
			m.LoadSnapshot(in)
			out := m.Run(variant.p)
			if out.SigSegv+out.SigFpe+out.Undef > 0 {
				t.Fatalf("list %s faulted: %+v", variant.name, out)
			}
			if m.Regs[x64.RDI] != node1 {
				t.Fatalf("list %s: rdi = %#x, want node1 %#x", variant.name, m.Regs[x64.RDI], node1)
			}
			var got uint32
			for bt := 3; bt >= 0; bt-- {
				bb, _, _ := m.MemByte(node0 + uint64(bt))
				got = got<<8 | uint32(bb)
			}
			if got != val*2 {
				t.Fatalf("list %s: value = %#x, want %#x", variant.name, got, val*2)
			}
		}
	}
}

// TestSuiteShape checks the paper's structural facts about the suite.
func TestSuiteShape(t *testing.T) {
	all := All()
	if len(all) != 28 {
		t.Fatalf("suite has %d kernels, want 28 (p01..p25 + mont + list + saxpy)", len(all))
	}
	stars, timeouts := 0, 0
	for _, b := range all {
		if b.Star {
			stars++
		}
		if b.SynthTimeout {
			timeouts++
		}
		if b.Target.InstCount() == 0 {
			t.Errorf("%s: empty target", b.Name)
		}
		if err := b.Target.Validate(); err != nil {
			t.Errorf("%s: invalid target: %v", b.Name, err)
		}
	}
	if timeouts != 3 {
		t.Errorf("synthesis-timeout kernels = %d, want 3 (p19, p20, p24)", timeouts)
	}
	if stars < 6 {
		t.Errorf("starred kernels = %d, want >= 6", stars)
	}
	// O0 targets must be substantially longer than the -O3 comparators —
	// that redundancy is what the search exploits.
	mont, _ := ByName("mont")
	if mont.Target.InstCount() <= 2*mont.GccO3.InstCount() {
		t.Errorf("mont O0 (%d insts) should dwarf gcc -O3 (%d insts)",
			mont.Target.InstCount(), mont.GccO3.InstCount())
	}
}
