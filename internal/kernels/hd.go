// Package kernels defines the paper's benchmark suite (§6): the 25
// Hacker's Delight programs of Gulwani's benchmark (p01–p25, compiled from
// the C found in the original text via the cc mini-compiler), the
// Montgomery multiplication kernel of Figure 1, the SAXPY kernel of Figure
// 14 and the linked-list traversal fragment of Figure 15 — each with an
// llvm -O0 style target, gcc/icc -O3 style comparators, an annotated input
// spec, and reference Go semantics used by the test suite.
package kernels

import (
	"math/rand"

	"repro/internal/cc"
	"repro/internal/emu"
	"repro/internal/testgen"
	"repro/internal/x64"
)

// x, y, a, b, c shorthands for the IR.
const (
	i32 = cc.I32
	i64 = cc.I64
)

func p0() cc.Expr { return cc.P(0, i32) }
func p1() cc.Expr { return cc.P(1, i32) }
func p2() cc.Expr { return cc.P(2, i32) }
func p3() cc.Expr { return cc.P(3, i32) }

func add(x, y cc.Expr) cc.Expr  { return cc.B(cc.OpAdd, x, y) }
func sub(x, y cc.Expr) cc.Expr  { return cc.B(cc.OpSub, x, y) }
func mul(x, y cc.Expr) cc.Expr  { return cc.B(cc.OpMul, x, y) }
func divu(x, y cc.Expr) cc.Expr { return cc.B(cc.OpDivU, x, y) }
func and(x, y cc.Expr) cc.Expr  { return cc.B(cc.OpAnd, x, y) }
func or(x, y cc.Expr) cc.Expr   { return cc.B(cc.OpOr, x, y) }
func xor(x, y cc.Expr) cc.Expr  { return cc.B(cc.OpXor, x, y) }

// typed constant helpers
func c32(v int64) cc.Expr { return cc.C(v, i32) }

func shl32(x cc.Expr, k int64) cc.Expr { return cc.B(cc.OpShl, x, c32(k)) }
func lshr(x cc.Expr, k int64) cc.Expr  { return cc.B(cc.OpLshr, x, c32(k)) }
func ashr(x cc.Expr, k int64) cc.Expr  { return cc.B(cc.OpAshr, x, c32(k)) }
func not(x cc.Expr) cc.Expr            { return cc.U(cc.OpNot, x) }
func neg(x cc.Expr) cc.Expr            { return cc.U(cc.OpNeg, x) }
func eq(x, y cc.Expr) cc.Expr          { return cc.B(cc.OpEq, x, y) }
func ne(x, y cc.Expr) cc.Expr          { return cc.B(cc.OpNe, x, y) }
func slt(x, y cc.Expr) cc.Expr         { return cc.B(cc.OpSlt, x, y) }
func ule(x, y cc.Expr) cc.Expr         { return cc.B(cc.OpUle, x, y) }
func ugt(x, y cc.Expr) cc.Expr         { return cc.B(cc.OpUgt, x, y) }
func ret(x cc.Expr) []cc.Stmt          { return []cc.Stmt{&cc.Return{X: x}} }
func let(n string, x cc.Expr) *cc.Let  { return &cc.Let{Name: n, X: x} }
func v32(n string) cc.Expr             { return cc.V(n, i32) }

// hdDef describes one Hacker's Delight kernel.
type hdDef struct {
	name   string
	params int // number of I32 parameters
	body   []cc.Stmt
	// ref implements the kernel's semantics over uint32 arguments.
	ref func(a []uint32) uint32
	// paramGen overrides random generation per parameter index.
	paramGen map[int]func(rng *rand.Rand) uint32
	// star marks the kernels for which the paper's STOKE found an
	// algorithmically distinct rewrite (Figure 10).
	star bool
	// synthTimeout marks the kernels whose synthesis timed out in the
	// paper (Figure 12: p19, p20, p24).
	synthTimeout bool
}

func bool2u32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// hdDefs is the p01..p25 table, following the C in Hacker's Delight.
var hdDefs = []hdDef{
	{name: "p01", params: 1, // turn off rightmost 1-bit
		body: ret(and(p0(), sub(p0(), c32(1)))),
		ref:  func(a []uint32) uint32 { return a[0] & (a[0] - 1) }},
	{name: "p02", params: 1, // test for 2^n - 1 form
		body: ret(and(p0(), add(p0(), c32(1)))),
		ref:  func(a []uint32) uint32 { return a[0] & (a[0] + 1) }},
	{name: "p03", params: 1, // isolate rightmost 1-bit
		body: ret(and(p0(), neg(p0()))),
		ref:  func(a []uint32) uint32 { return a[0] & -a[0] }},
	{name: "p04", params: 1, // mask of rightmost 1 and trailing 0s
		body: ret(xor(p0(), sub(p0(), c32(1)))),
		ref:  func(a []uint32) uint32 { return a[0] ^ (a[0] - 1) }},
	{name: "p05", params: 1, // right-propagate rightmost 1-bit
		body: ret(or(p0(), sub(p0(), c32(1)))),
		ref:  func(a []uint32) uint32 { return a[0] | (a[0] - 1) }},
	{name: "p06", params: 1, // turn on rightmost 0-bit
		body: ret(or(p0(), add(p0(), c32(1)))),
		ref:  func(a []uint32) uint32 { return a[0] | (a[0] + 1) }},
	{name: "p07", params: 1, // isolate rightmost 0-bit
		body: ret(and(not(p0()), add(p0(), c32(1)))),
		ref:  func(a []uint32) uint32 { return ^a[0] & (a[0] + 1) }},
	{name: "p08", params: 1, // mask of trailing 0s
		body: ret(and(not(p0()), sub(p0(), c32(1)))),
		ref:  func(a []uint32) uint32 { return ^a[0] & (a[0] - 1) }},
	{name: "p09", params: 1, // absolute value
		body: []cc.Stmt{
			let("t", ashr(p0(), 31)),
			&cc.Return{X: sub(xor(p0(), v32("t")), v32("t"))},
		},
		ref: func(a []uint32) uint32 {
			t := uint32(int32(a[0]) >> 31)
			return (a[0] ^ t) - t
		}},
	{name: "p10", params: 2, // test if nlz(x) == nlz(y)
		body: ret(ule(xor(p0(), p1()), and(p0(), p1()))),
		ref: func(a []uint32) uint32 {
			return bool2u32(a[0]^a[1] <= a[0]&a[1])
		}},
	{name: "p11", params: 2, // test if nlz(x) < nlz(y)
		body: ret(ugt(and(p0(), not(p1())), p1())),
		ref: func(a []uint32) uint32 {
			return bool2u32(a[0]&^a[1] > a[1])
		}},
	{name: "p12", params: 2, // test if nlz(x) <= nlz(y)
		body: ret(ule(and(p1(), not(p0())), p0())),
		ref: func(a []uint32) uint32 {
			return bool2u32(a[1]&^a[0] <= a[0])
		}},
	{name: "p13", params: 1, // sign function
		body: ret(or(ashr(p0(), 31), lshr(neg(p0()), 31))),
		ref: func(a []uint32) uint32 {
			return uint32(int32(a[0])>>31) | (-a[0])>>31
		}},
	{name: "p14", params: 2, // floor of average
		body: ret(add(and(p0(), p1()), lshr(xor(p0(), p1()), 1))),
		ref: func(a []uint32) uint32 {
			return a[0]&a[1] + (a[0]^a[1])>>1
		}},
	{name: "p15", params: 2, // ceiling of average
		body: ret(sub(or(p0(), p1()), lshr(xor(p0(), p1()), 1))),
		ref: func(a []uint32) uint32 {
			return a[0] | a[1] - (a[0]^a[1])>>1
		}},
	{name: "p16", params: 2, // max of two signed integers
		body: ret(xor(p0(), and(xor(p0(), p1()), neg(slt(p0(), p1()))))),
		ref: func(a []uint32) uint32 {
			return a[0] ^ (a[0]^a[1])&-bool2u32(int32(a[0]) < int32(a[1]))
		}},
	{name: "p17", params: 1, // turn off rightmost contiguous run of 1s
		body: ret(and(add(or(p0(), sub(p0(), c32(1))), c32(1)), p0())),
		ref: func(a []uint32) uint32 {
			return (a[0] | (a[0] - 1) + 1) & a[0]
		}},
	{name: "p18", params: 1, star: true, // is a power of 2
		body: []cc.Stmt{
			let("z", and(p0(), sub(p0(), c32(1)))),
			&cc.Return{X: and(eq(v32("z"), c32(0)), ne(p0(), c32(0)))},
		},
		ref: func(a []uint32) uint32 {
			return bool2u32(a[0]&(a[0]-1) == 0 && a[0] != 0)
		}},
	{name: "p19", params: 3, synthTimeout: true, // exchange two bitfields
		body: []cc.Stmt{
			let("t", and(xor(p0(), cc.B(cc.OpLshr, p0(), p1())), p2())),
			&cc.Return{X: xor(xor(p0(), v32("t")), cc.B(cc.OpShl, v32("t"), p1()))},
		},
		ref: func(a []uint32) uint32 {
			t := (a[0] ^ a[0]>>(a[1]&31)) & a[2]
			return a[0] ^ t ^ t<<(a[1]&31)
		},
		paramGen: map[int]func(rng *rand.Rand) uint32{
			1: func(rng *rand.Rand) uint32 { return uint32(rng.Intn(32)) },
		}},
	{name: "p20", params: 1, synthTimeout: true, // next higher with same popcount
		body: []cc.Stmt{
			let("s", and(p0(), neg(p0()))),
			let("r", add(p0(), v32("s"))),
			let("y", xor(p0(), v32("r"))),
			let("q", divu(lshr(v32("y"), 2), v32("s"))),
			&cc.Return{X: or(v32("r"), v32("q"))},
		},
		ref: func(a []uint32) uint32 {
			s := a[0] & -a[0]
			r := a[0] + s
			y := a[0] ^ r
			return r | (y>>2)/s
		},
		paramGen: map[int]func(rng *rand.Rand) uint32{
			0: func(rng *rand.Rand) uint32 {
				// s must be non-zero: any non-zero input works; keep the
				// value away from the wrap-around edge as in HD.
				return rng.Uint32()%0x7ffffffe + 1
			},
		}},
	{name: "p21", params: 4, star: true, // cycle through 3 values (Figure 13)
		body: ret(xor(xor(
			and(neg(eq(p0(), p3())), xor(p1(), p3())),
			and(neg(eq(p0(), p1())), xor(p2(), p3()))),
			p3())),
		ref: func(a []uint32) uint32 {
			x, va, vb, vc := a[0], a[1], a[2], a[3]
			return -bool2u32(x == vc)&(va^vc) ^ -bool2u32(x == va)&(vb^vc) ^ vc
		}},
	{name: "p22", params: 1, star: true, // parity
		body: []cc.Stmt{
			let("y1", xor(p0(), lshr(p0(), 1))),
			let("y2", xor(v32("y1"), lshr(v32("y1"), 2))),
			let("y3", xor(v32("y2"), lshr(v32("y2"), 4))),
			let("y4", xor(v32("y3"), lshr(v32("y3"), 8))),
			let("y5", xor(v32("y4"), lshr(v32("y4"), 16))),
			&cc.Return{X: and(v32("y5"), c32(1))},
		},
		ref: func(a []uint32) uint32 {
			y := a[0] ^ a[0]>>1
			y ^= y >> 2
			y ^= y >> 4
			y ^= y >> 8
			y ^= y >> 16
			return y & 1
		}},
	{name: "p23", params: 1, star: true, // population count (SWAR)
		body: []cc.Stmt{
			let("x1", sub(p0(), and(lshr(p0(), 1), c32(0x55555555)))),
			let("x2", add(and(v32("x1"), c32(0x33333333)),
				and(lshr(v32("x1"), 2), c32(0x33333333)))),
			let("x3", and(add(v32("x2"), lshr(v32("x2"), 4)), c32(0x0f0f0f0f))),
			let("x4", add(v32("x3"), lshr(v32("x3"), 8))),
			let("x5", add(v32("x4"), lshr(v32("x4"), 16))),
			&cc.Return{X: and(v32("x5"), c32(0x3f))},
		},
		ref: func(a []uint32) uint32 {
			x := a[0] - a[0]>>1&0x55555555
			x = x&0x33333333 + x>>2&0x33333333
			x = (x + x>>4) & 0x0f0f0f0f
			x += x >> 8
			x += x >> 16
			return x & 0x3f
		}},
	{name: "p24", params: 1, synthTimeout: true, // round up to next power of 2
		body: []cc.Stmt{
			let("x1", sub(p0(), c32(1))),
			let("x2", or(v32("x1"), lshr(v32("x1"), 1))),
			let("x3", or(v32("x2"), lshr(v32("x2"), 2))),
			let("x4", or(v32("x3"), lshr(v32("x3"), 4))),
			let("x5", or(v32("x4"), lshr(v32("x4"), 8))),
			let("x6", or(v32("x5"), lshr(v32("x5"), 16))),
			&cc.Return{X: add(v32("x6"), c32(1))},
		},
		ref: func(a []uint32) uint32 {
			x := a[0] - 1
			x |= x >> 1
			x |= x >> 2
			x |= x >> 4
			x |= x >> 8
			x |= x >> 16
			return x + 1
		}},
	{name: "p25", params: 2, star: true, // high 32 bits of 64-bit product
		body: []cc.Stmt{
			let("u0", and(p0(), c32(0xffff))),
			let("u1", lshr(p0(), 16)),
			let("vv0", and(p1(), c32(0xffff))),
			let("vv1", lshr(p1(), 16)),
			let("t", add(mul(v32("u1"), v32("vv0")),
				lshr(mul(v32("u0"), v32("vv0")), 16))),
			let("w1", add(mul(v32("u0"), v32("vv1")), and(v32("t"), c32(0xffff)))),
			&cc.Return{X: add(add(mul(v32("u1"), v32("vv1")), lshr(v32("t"), 16)),
				lshr(v32("w1"), 16))},
		},
		ref: func(a []uint32) uint32 {
			return uint32(uint64(a[0]) * uint64(a[1]) >> 32)
		}},
}

// hdSpec builds the testcase spec for an HD kernel: parameters arrive in
// the low 32 bits of the System V argument registers, the result is eax.
func hdSpec(def hdDef) testgen.Spec {
	argRegs := []x64.Reg{x64.RDI, x64.RSI, x64.RDX, x64.RCX}
	return testgen.Spec{
		BuildInput: func(rng *rand.Rand) *emu.Snapshot {
			a := testgen.NewArena(0x100000)
			a.AllocStack(1 << 10)
			for i := 0; i < def.params; i++ {
				var v uint32
				if g, ok := def.paramGen[i]; ok {
					v = g(rng)
				} else {
					v = rng.Uint32()
				}
				a.SetReg(argRegs[i], uint64(v))
			}
			return a.Snapshot()
		},
		LiveOut: testgen.LiveSet{GPRs: []testgen.LiveReg{{Reg: x64.RAX, Width: 4}}},
	}
}

// hdFunc builds the cc function for one definition.
func hdFunc(def hdDef) *cc.Func {
	params := make([]cc.Type, def.params)
	for i := range params {
		params[i] = i32
	}
	return &cc.Func{Name: def.name, Params: params, Body: def.body}
}
