package kernels

import (
	"testing"

	"repro/internal/stoke"
	"repro/internal/verify"
)

func TestDebugP02Unknown(t *testing.T) {
	b, _ := ByName("p02")
	opts := stoke.DefaultOptions
	opts.Seed = 1
	opts.SynthChains = 2
	opts.OptChains = 2
	opts.SynthProposals = 80000
	opts.OptProposals = 120000
	opts.Ell = 20
	rep, err := stoke.Run(b.Kernel, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verdict=%v refinements=%d rewrite:\n%s", rep.Verdict, rep.Refinements, rep.Rewrite)
	live := verify.LiveOut{GPRs: b.Spec.LiveOut.GPRs}
	res := verify.Equivalent(b.Target, rep.Rewrite, live, verify.DefaultConfig)
	t.Logf("direct verify: %v reason=%q conflicts=%d", res.Verdict, res.Reason, res.Conflicts)
	if res.Cex != nil {
		t.Logf("cex rdi=%#x", res.Cex.Regs[7])
	}
}
