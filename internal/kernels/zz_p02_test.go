package kernels

import (
	"context"
	"testing"

	"repro/internal/verify"
	"repro/stoke"
)

func TestDebugP02Unknown(t *testing.T) {
	b, _ := ByName("p02")
	rep, err := stoke.Optimize(context.Background(), b.Kernel,
		stoke.WithSeed(1),
		stoke.WithChains(2, 2),
		stoke.WithBudgets(80000, 120000),
		stoke.WithEll(20))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("verdict=%v refinements=%d rewrite:\n%s", rep.Verdict, rep.Refinements, rep.Rewrite)
	live := verify.LiveOut{GPRs: b.Spec.LiveOut.GPRs}
	res := verify.Equivalent(context.Background(), b.Target, rep.Rewrite, live, verify.DefaultConfig)
	t.Logf("direct verify: %v reason=%q conflicts=%d", res.Verdict, res.Reason, res.Conflicts)
	if res.Cex != nil {
		t.Logf("cex rdi=%#x", res.Cex.Regs[7])
	}
}
