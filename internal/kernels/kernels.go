package kernels

import (
	"fmt"

	"repro/internal/cc"
	"repro/internal/verify"
	"repro/internal/x64"
	"repro/stoke"
)

// Bench is one benchmark of §6: a STOKE kernel (the llvm -O0 style target
// plus annotations) together with the production-compiler comparators and
// the paper's markers.
type Bench struct {
	stoke.Kernel

	// GccO3 and IccO3 are the -O3 comparator sequences of Figure 10.
	GccO3 *x64.Program
	IccO3 *x64.Program

	// PaperRewrite is the rewrite the paper prints for this kernel
	// (Figures 1, 13, 14, 15), where available. It anchors the Figure 10
	// STOKE bar when a local search run does not rediscover it.
	PaperRewrite *x64.Program

	// Star marks kernels where the paper's STOKE found an algorithmically
	// distinct rewrite (Figure 10).
	Star bool

	// SynthTimeout marks kernels whose synthesis phase timed out in the
	// paper (Figure 12: p19, p20, p24).
	SynthTimeout bool

	// RefHD, for Hacker's Delight kernels, is the reference semantics
	// over uint32 arguments (nil otherwise); Params is its arity.
	RefHD  func(a []uint32) uint32
	Params int
}

// All returns the full §6 suite in the paper's order: p01..p25, mont,
// list, saxpy.
func All() []Bench {
	var out []Bench
	for _, def := range hdDefs {
		f := hdFunc(def)
		b := Bench{
			Kernel: stoke.Kernel{
				Name:   def.name,
				Target: cc.CompileO0(f),
				Spec:   hdSpec(def),
			},
			GccO3:        cc.CompileO2(f, cc.FlavorGCC),
			IccO3:        cc.CompileO2(f, cc.FlavorICC),
			Star:         def.star,
			SynthTimeout: def.synthTimeout,
			RefHD:        def.ref,
			Params:       def.params,
		}
		out = append(out, b)
	}

	out = append(out, Bench{
		Kernel: stoke.Kernel{
			Name:   "mont",
			Target: x64.MustParse(montO0),
			Spec:   montSpec(),
		},
		GccO3:        x64.MustParse(montGccO3),
		IccO3:        x64.MustParse(montGccO3), // no icc listing in the paper; Fig. 10 shows icc ≈ gcc here
		PaperRewrite: x64.MustParse(montStoke),
		Star:         true,
	})

	out = append(out, Bench{
		Kernel: stoke.Kernel{
			Name:     "list",
			Target:   x64.MustParse(listO0),
			Spec:     listSpec(),
			LiveMem:  listLiveMem(),
			Pointers: x64.RegSet(0).With(x64.RSP),
		},
		GccO3:        x64.MustParse(listGccO3),
		IccO3:        x64.MustParse(listIccO3),
		PaperRewrite: x64.MustParse(listStoke),
	})

	saxpy := saxpyFunc()
	out = append(out, Bench{
		Kernel: stoke.Kernel{
			Name:     "saxpy",
			Target:   cc.CompileO0(saxpy),
			Spec:     saxpySpec(),
			LiveMem:  []verify.MemRange{{Base: x64.RSI, Disp: 0, Len: 16}},
			Pointers: x64.RegSet(0).With(x64.RSI).With(x64.RDX).With(x64.RSP),
			SSE:      true,
		},
		GccO3:        cc.CompileO2(saxpy, cc.FlavorGCC),
		IccO3:        cc.CompileO2(saxpy, cc.FlavorICC),
		PaperRewrite: x64.MustParse(saxpyStoke),
		Star:         true,
	})
	return out
}

// ByName returns the named benchmark.
func ByName(name string) (Bench, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Bench{}, fmt.Errorf("kernels: unknown benchmark %q", name)
}

// Names lists the benchmark names in suite order.
func Names() []string {
	var out []string
	for _, b := range All() {
		out = append(out, b.Name)
	}
	return out
}
