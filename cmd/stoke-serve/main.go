// Command stoke-serve runs the superoptimizer as a service: an HTTP/JSON
// job API over an async search queue, fronted by the persistent
// content-addressed rewrite store, so the second submitter of any
// α-equivalent kernel gets the proven rewrite back in microseconds
// instead of minutes.
//
// Usage:
//
//	stoke-serve                                  # :8080, store in ./rewrites.jsonl
//	stoke-serve -addr :9090 -store /var/lib/stoke/rewrites.jsonl
//	stoke-serve -workers 4 -per-tenant 2 -profile full
//
// Submit a kernel and poll it:
//
//	curl -s localhost:8080/v1/jobs -d '{
//	  "kernel": {
//	    "name": "add",
//	    "target": "movq rdi, rax\naddq rsi, rax",
//	    "inputs": ["rdi", "rsi"],
//	    "outputs": ["rax"]
//	  }
//	}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -N  localhost:8080/v1/jobs/job-1/events   # SSE engine events
//	curl -s  localhost:8080/statsz                 # cache + job counters
//
// Resubmitting the same kernel — or any register-renamed variant of it —
// answers synchronously from the store with status "done" and
// "cache_hit": true.
//
// SIGINT/SIGTERM drains gracefully: new submissions are refused, running
// searches stop and complete their jobs with best-so-far partial reports,
// and the store is compacted on close.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
	"repro/stoke"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		storePath = flag.String("store", "rewrites.jsonl", "rewrite store path (empty = in-memory only)")
		storeCap  = flag.Int("store-cap", store.DefaultCap, "in-memory LRU capacity of the store")
		workers   = flag.Int("workers", 2, "concurrent search jobs")
		queue     = flag.Int("queue", 64, "queued job limit")
		perTenant = flag.Int("per-tenant", 1, "concurrent running jobs per tenant (X-Tenant header)")
		profile   = flag.String("profile", "quick", "default search budget profile (quick or full)")
		engineW   = flag.Int("engine-workers", 0, "search chain workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "stoke-serve:", err)
		os.Exit(1)
	}

	prof, err := stoke.ProfileByName(*profile)
	if err != nil {
		fail(err)
	}
	st, err := store.Open(*storePath, *storeCap)
	if err != nil {
		fail(err)
	}
	engine := stoke.NewEngine(stoke.EngineConfig{Workers: *engineW})

	srv := server.New(server.Config{
		Engine:     engine,
		Store:      st,
		Workers:    *workers,
		QueueDepth: *queue,
		PerTenant:  *perTenant,
		Options:    []stoke.Option{stoke.WithProfile(prof)},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("stoke-serve: %v", err)
		}
	}()
	log.Printf("stoke-serve: listening on %s (store %q, %d workers)",
		ln.Addr(), *storePath, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("stoke-serve: draining")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("stoke-serve: drain: %v", err)
	}
	_ = httpSrv.Shutdown(ctx)
	engine.Close()
	if err := st.Close(); err != nil {
		log.Printf("stoke-serve: store close: %v", err)
	}
}
