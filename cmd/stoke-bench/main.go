// Command stoke-bench regenerates the paper's tables and figures (§6).
//
// Usage:
//
//	stoke-bench                 # every figure, quick profile
//	stoke-bench -fig 10         # one figure
//	stoke-bench -profile full   # larger search budgets
//	stoke-bench -eval-baseline BENCH_eval.json     # evaluation throughput A/B
//	stoke-bench -check BENCH_eval.json             # fail on >35% ratio regression vs the committed baseline
//	stoke-bench -search-baseline BENCH_search.json # tempering vs independent A/B
//	stoke-bench -cache-baseline BENCH_search.json  # rewrite-store cold vs served hit
//	stoke-bench -verify-baseline BENCH_search.json # cex-bank replay + gate vs plain SAT calls
//
// Output is plain text, one section per figure, written to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "figure to regenerate (0 = all)")
		profile   = flag.String("profile", "quick", "search budget profile (quick or full)")
		seed      = flag.Int64("seed", 1, "random seed")
		evalOut   = flag.String("eval-baseline", "", "write the evaluation-throughput baseline JSON to this path and exit")
		evalProp  = flag.Int64("eval-proposals", 300000, "proposal budget per eval-baseline configuration")
		evalCheck = flag.String("check", "", "measure a fresh evaluation baseline and fail if its ratios regressed >35% against the committed JSON at this path")

		searchOut     = flag.String("search-baseline", "", "write the search-coordination baseline JSON (tempering vs independent chains) to this path and exit")
		searchKernels = flag.String("search-kernels", strings.Join(experiments.DefaultSearchKernels, ","), "comma-separated kernels for -search-baseline")
		searchSeeds   = flag.Int("search-seeds", 5, "seeds per search-baseline configuration")
		searchChains  = flag.Int("search-chains", 4, "synthesis chains per search-baseline run")
		searchProp    = flag.Int64("search-proposals", 150000, "per-chain proposal budget per search-baseline run")
		searchEll     = flag.Int("search-ell", 20, "sequence length for search-baseline runs")

		cacheOut     = flag.String("cache-baseline", "", "fold the rewrite-store baseline (cold search vs served cache hit) into this search-baseline JSON and exit")
		cacheKernels = flag.String("cache-kernels", strings.Join(experiments.DefaultCacheKernels, ","), "comma-separated kernels for -cache-baseline")
		cacheHits    = flag.Int("cache-hits", 20, "served resubmissions measured per -cache-baseline kernel")

		verifyOut     = flag.String("verify-baseline", "", "fold the verification-cost baseline (SAT calls vs bank replay kills and gate deferrals) into this search-baseline JSON and exit")
		verifyKernels = flag.String("verify-kernels", strings.Join(experiments.DefaultVerifyKernels, ","), "comma-separated kernels for the verification-cost rows (empty disables the -search-baseline ride-along)")
		verifySeeds   = flag.Int("verify-seeds", 2, "seeds per verification-baseline kernel and mode")
		verifyProp    = flag.Int64("verify-proposals", 60000, "optimization proposal budget per verification-baseline run")
		verifyTests   = flag.Int("verify-tests", 4, "initial testcases per verification-baseline run (small, so refinement feeds the bank)")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "stoke-bench:", err)
		os.Exit(1)
	}

	// The evaluation-throughput baseline is a standalone measurement:
	// interpreted vs compiled proposals/sec, written as machine-readable
	// JSON (BENCH_eval.json) so the perf trajectory is tracked per PR.
	if *evalOut != "" {
		base, err := experiments.WriteEvalBaseline(*evalOut, *evalProp)
		if err != nil {
			fail(err)
		}
		for _, r := range base.Runs {
			fmt.Printf("%-5s ell=%-3d %-11s %12.0f proposals/s\n",
				r.Kernel, r.Ell, r.Mode, r.ProposalsPerSec)
		}
		for k, v := range base.Speedups {
			fmt.Printf("speedup %-12s %.2fx\n", k, v)
		}
		for k, v := range base.FlagFree {
			fmt.Printf("flag-free %-12s %.0f%% of flag-writing slots\n", k, 100*v)
		}
		for k, v := range base.RegFree {
			fmt.Printf("reg-free  %-12s %.0f%% of register-writing slots\n", k, 100*v)
		}
		return
	}

	// The regression guard re-measures the evaluation baseline and compares
	// its box-independent ratios (speedups and liveness coverage fractions)
	// against the committed BENCH_eval.json, failing the build on a >35%
	// regression of any tracked row.
	if *evalCheck != "" {
		fresh, err := experiments.CheckEvalBaseline(*evalCheck, *evalProp)
		if err != nil {
			fail(err)
		}
		for k, v := range fresh.Speedups {
			fmt.Printf("speedup %-12s %.2fx (within tolerance)\n", k, v)
		}
		for k, v := range fresh.BatchedSpeedups {
			fmt.Printf("batched-speedup %-12s %.2fx (within tolerance)\n", k, v)
		}
		for k, v := range fresh.RegFree {
			fmt.Printf("reg-free %-12s %.0f%% (within tolerance)\n", k, 100*v)
		}
		return
	}

	// The search-coordination baseline A/Bs the cross-chain coordinator
	// (replica exchange + shared rejection profile) against the paper's
	// independent chains on synthesis hit-rate and time-to-zero-cost,
	// written as machine-readable JSON (BENCH_search.json).
	if *searchOut != "" {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
		defer cancel()
		names := strings.Split(*searchKernels, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		base, err := experiments.WriteSearchBaseline(ctx, *searchOut, names,
			*searchSeeds, *searchChains, *searchProp, *searchEll)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatSearchBaseline(base))
		// The verification-cost rows ride along in the same JSON: SAT calls
		// versus bank replay kills and gate deferrals, with proof-time
		// percentiles, bank off against on.
		if *verifyKernels != "" {
			vnames := strings.Split(*verifyKernels, ",")
			for i := range vnames {
				vnames[i] = strings.TrimSpace(vnames[i])
			}
			vruns, err := experiments.WriteVerifyBaseline(ctx, *searchOut, vnames,
				*verifySeeds, *verifyProp, *verifyTests)
			if err != nil {
				fail(err)
			}
			fmt.Print(experiments.FormatVerifyBaseline(vruns))
		}
		return
	}

	// The verification-cost baseline A/Bs the counterexample bank and
	// pre-verification gate against plain per-candidate SAT calls,
	// recorded as the verify_runs rows of BENCH_search.json.
	if *verifyOut != "" {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
		defer cancel()
		names := strings.Split(*verifyKernels, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		vruns, err := experiments.WriteVerifyBaseline(ctx, *verifyOut, names,
			*verifySeeds, *verifyProp, *verifyTests)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatVerifyBaseline(vruns))
		return
	}

	// The rewrite-store baseline measures what the content-addressed cache
	// buys: cold proving cost against served hit latency, recorded as the
	// cache_runs rows of BENCH_search.json.
	if *cacheOut != "" {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
		defer cancel()
		names := strings.Split(*cacheKernels, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
		runs, err := experiments.WriteCacheBaseline(ctx, *cacheOut, names, *cacheHits)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.FormatCacheBaseline(runs))
		return
	}

	var p experiments.Profile
	switch *profile {
	case "quick":
		p = experiments.Quick
	case "full":
		p = experiments.Full
	default:
		fail(fmt.Errorf("unknown profile %q (valid: quick, full)", *profile))
	}
	p.Seed = *seed

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	w := os.Stdout
	// Each figure ends with a section break; an interrupt stops there
	// rather than running the remaining figures to completion.
	section := func() {
		fmt.Fprintf(w, "\n\n")
		if ctx.Err() != nil {
			fail(fmt.Errorf("interrupted"))
		}
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }

	// Figures 10 and 12 share one suite run, as in the paper. The suite
	// runs several kernels at a time on one shared engine pool, streaming
	// a progress line as each kernel completes.
	var runs []experiments.KernelRun
	if want(10) || want(12) {
		var err error
		fmt.Fprintf(w, "Running the benchmark suite (28 kernels)...\n")
		runs, err = experiments.RunSuite(ctx, p, w)
		if err != nil {
			fail(err)
		}
		section()
	}

	if want(1) {
		if err := experiments.Fig01Montgomery(ctx, w, p); err != nil {
			fail(err)
		}
		section()
	}
	if want(2) {
		if err := experiments.Fig02Throughput(w); err != nil {
			fail(err)
		}
		section()
	}
	if want(3) {
		if err := experiments.Fig03PredictedVsActual(w); err != nil {
			fail(err)
		}
		section()
	}
	if want(5) {
		if err := experiments.Fig05EarlyTermination(ctx, w, p); err != nil {
			fail(err)
		}
		section()
	}
	if want(6) {
		experiments.Fig06ImprovedMetric(w)
		section()
	}
	if want(7) {
		if err := experiments.Fig07CostFunctions(ctx, w, p, "mont"); err != nil {
			fail(err)
		}
		section()
	}
	if want(8) {
		if err := experiments.Fig08PercentOfFinal(ctx, w, p, "mont"); err != nil {
			fail(err)
		}
		section()
	}
	if want(10) {
		experiments.Fig10Speedups(w, runs)
		section()
	}
	if want(11) {
		experiments.Fig11Params(w)
		section()
	}
	if want(12) {
		experiments.Fig12Runtimes(w, runs)
		section()
	}
	if want(13) {
		if err := experiments.Fig13CycleThroughValues(ctx, w, p); err != nil {
			fail(err)
		}
		section()
	}
	if want(14) {
		if err := experiments.Fig14Saxpy(ctx, w, p); err != nil {
			fail(err)
		}
		section()
	}
	if want(15) {
		if err := experiments.Fig15LinkedList(ctx, w, p); err != nil {
			fail(err)
		}
		section()
	}
}
