// Command stoke optimizes one benchmark kernel (or an assembly file) with
// the stochastic superoptimizer and prints the discovered rewrite, its
// validation verdict, and the modelled speedup — the user-facing flow of
// Figure 9 in the paper.
//
// Interrupting a run (Ctrl-C) cancels the search and prints the best
// rewrite found so far, marked as partial.
//
// Usage:
//
//	stoke -kernel mont                  # optimize a §6 benchmark
//	stoke -kernel p01 -profile full     # spend more search budget
//	stoke -kernel p01 -progress         # stream search events
//	stoke -list                         # list available benchmarks
//	stoke -target f.s -in rdi,rsi -out rax   # optimize your own listing
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/kernels"
	"repro/internal/perf"
	"repro/internal/x64"
	"repro/stoke"
)

func main() {
	var (
		kernel   = flag.String("kernel", "", "benchmark kernel to optimize (see -list)")
		list     = flag.Bool("list", false, "list benchmark kernels and exit")
		seed     = flag.Int64("seed", 1, "random seed")
		profile  = flag.String("profile", "quick", "search budget profile (quick or full)")
		progress = flag.Bool("progress", false, "stream search progress events to stderr")
		indep    = flag.Bool("independent", false, "disable cross-chain coordination (replica exchange, shared pruning, warm-started testcase profiles)")
		target   = flag.String("target", "", "assembly file to optimize instead of a benchmark")
		inRegs   = flag.String("in", "", "comma-separated 64-bit input registers for -target")
		outRegs  = flag.String("out", "rax", "comma-separated 64-bit output registers for -target")
	)
	flag.Parse()

	if *list {
		for _, b := range kernels.All() {
			marks := ""
			if b.Star {
				marks += " [*distinct rewrite in paper]"
			}
			if b.SynthTimeout {
				marks += " [synthesis timeout in paper]"
			}
			fmt.Printf("%-8s %3d insts%s\n", b.Name, b.Target.InstCount(), marks)
		}
		return
	}

	prof, err := stoke.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	opts := []stoke.Option{
		stoke.WithProfile(prof),
		stoke.WithSeed(*seed),
	}
	if *indep {
		opts = append(opts, stoke.WithTempering(false), stoke.WithSharedProfile(false))
	}
	if *progress {
		opts = append(opts, stoke.WithObserver(func(ev stoke.Event) {
			fmt.Fprintln(os.Stderr, ev)
		}))
	}

	var k stoke.Kernel
	switch {
	case *target != "":
		src, err := os.ReadFile(*target)
		if err != nil {
			fatal(err)
		}
		prog, err := stoke.Parse(string(src))
		if err != nil {
			fatal(err)
		}
		ins, err := parseRegs(*inRegs)
		if err != nil {
			fatal(err)
		}
		outs, err := parseRegs(*outRegs)
		if err != nil {
			fatal(err)
		}
		k = stoke.NewKernel(*target, prog,
			stoke.WithInputs(ins...), stoke.WithOutput64(outs...))
	case *kernel != "":
		b, err := kernels.ByName(*kernel)
		if err != nil {
			fatal(err)
		}
		k = b.Kernel
	default:
		fmt.Fprintln(os.Stderr, "need -kernel <name> or -target <file>; try -list")
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	rep, err := stoke.Optimize(ctx, k, opts...)
	if err != nil {
		fatal(err)
	}

	if rep.Partial {
		fmt.Printf("interrupted: best-so-far (partial) result\n")
	}
	fmt.Printf("kernel:      %s\n", rep.Kernel)
	fmt.Printf("target:      %d instructions, H=%.1f, %.1f cycles\n",
		rep.Target.InstCount(), perf.H(rep.Target), rep.TargetCycles)
	fmt.Printf("rewrite:     %d instructions, H=%.1f, %.1f cycles\n",
		rep.Rewrite.InstCount(), perf.H(rep.Rewrite), rep.RewriteCycles)
	fmt.Printf("speedup:     %.2fx (pipeline model)\n", rep.Speedup())
	// SynthTime/OptTime are summed across chains, so the derived rate is
	// per-worker throughput.
	fmt.Printf("synthesis:   succeeded=%v (%.2fs chain time)\n", rep.SynthesisSucceeded, rep.SynthTime.Seconds())
	fmt.Printf("optimize:    %.2fs chain time over %d proposals (%.0f proposals/s/worker)\n",
		rep.OptTime.Seconds(), rep.Stats.Proposals,
		float64(rep.Stats.Proposals)/(rep.SynthTime.Seconds()+rep.OptTime.Seconds()+1e-9))
	fmt.Printf("validation:  %v (%d refinement testcases, %.2fs)\n",
		rep.Verdict, rep.Refinements, rep.VerifyTime.Seconds())
	fmt.Printf("coordinator: %d replica exchanges, %d pruned chains\n", rep.Swaps, rep.Prunes)
	fmt.Printf("\n--- rewrite ---\n%s", rep.Rewrite)
}

func parseRegs(s string) ([]x64.Reg, error) {
	var out []x64.Reg
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		r, w, xmm, ok := x64.LookupReg(name)
		if !ok || xmm || w != 8 {
			return nil, fmt.Errorf("bad 64-bit register %q", name)
		}
		out = append(out, r)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stoke:", err)
	os.Exit(1)
}
